// Adapter that turns any WindowSchedule into a per-station NodeProtocol.
//
// A station picks one uniformly random slot per window. Expressed as a
// per-slot hazard so the per-node engine's single Bernoulli per station per
// slot suffices: at offset j of a W-slot window, a station that has not yet
// transmitted in this window transmits with probability 1/(W - j). By the
// chain rule this makes every offset equally likely (probability 1/W) and
// guarantees exactly one transmission per window (the hazard reaches 1 at
// the last offset).
#pragma once

#include <memory>

#include "sim/protocol.hpp"

namespace ucr {

/// Per-station view of a contention-window protocol.
class WindowNodeProtocol final : public NodeProtocol {
 public:
  /// Takes ownership of this station's schedule generator. Schedules are
  /// deterministic, so stations activated at the same slot stay in lockstep.
  explicit WindowNodeProtocol(std::unique_ptr<WindowSchedule> schedule);

  double transmit_probability() override;
  void on_slot_end(const Feedback& fb) override;

  std::uint64_t current_window() const { return window_; }
  std::uint64_t window_offset() const { return offset_; }

 private:
  std::unique_ptr<WindowSchedule> schedule_;
  std::uint64_t window_ = 0;  // 0 = fetch the first window lazily
  std::uint64_t offset_ = 0;
  bool sent_this_window_ = false;
};

}  // namespace ucr

#include "protocols/loglog_backoff.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/mathx.hpp"
#include "protocols/window_node.hpp"

namespace ucr {

void LogLogParams::validate() const {
  UCR_REQUIRE(r >= 2.0, "LogLog-Iterated Back-off requires r >= 2");
}

LogLogIteratedBackoff::LogLogIteratedBackoff(const LogLogParams& params)
    : params_(params), w_(params.r) {
  params_.validate();
}

std::uint64_t LogLogIteratedBackoff::next_window_slots() {
  const auto slots = static_cast<std::uint64_t>(std::llround(w_));
  UCR_CHECK(slots >= 1, "monotone window must span at least one slot");
  w_ *= 1.0 + 1.0 / loglog2_clamped(w_, 1.0);
  return slots;
}

ProtocolFactory make_loglog_factory(const LogLogParams& params,
                                    std::string name) {
  params.validate();
  ProtocolFactory f;
  f.name = std::move(name);
  f.window = [params](std::uint64_t) {
    return std::make_unique<LogLogIteratedBackoff>(params);
  };
  f.node = [params](std::uint64_t, Xoshiro256& rng) {
    return std::make_unique<WindowNodeProtocol>(
        std::make_unique<LogLogIteratedBackoff>(params), rng);
  };
  return f;
}

}  // namespace ucr

#include "protocols/known_k.hpp"

#include "common/check.hpp"

namespace ucr {

KnownKGenie::KnownKGenie(std::uint64_t k) : remaining_(k) {
  UCR_REQUIRE(k > 0, "genie needs a positive k");
}

double KnownKGenie::transmit_probability() const {
  UCR_CHECK(remaining_ > 0, "probability requested after completion");
  return 1.0 / static_cast<double>(remaining_);
}

void KnownKGenie::on_slot_end(bool delivery) {
  if (delivery) {
    UCR_CHECK(remaining_ > 0, "delivery after completion");
    --remaining_;
  }
}

std::uint64_t KnownKGenie::constant_probability_slots() const {
  return ~std::uint64_t{0};  // constant until the next delivery
}

void KnownKGenie::on_non_delivery_slots(std::uint64_t /*count*/) {
  // Non-delivery slots do not change the genie's state.
}

KnownKGenieNode::KnownKGenieNode(std::uint64_t k) : remaining_(k) {
  UCR_REQUIRE(k > 0, "genie needs a positive k");
}

double KnownKGenieNode::transmit_probability() {
  UCR_CHECK(remaining_ > 0, "probability requested after completion");
  return 1.0 / static_cast<double>(remaining_);
}

void KnownKGenieNode::on_slot_end(const Feedback& fb) {
  if (fb.delivered_mine) return;  // engine deactivates this station
  if (fb.heard_delivery) {
    UCR_CHECK(remaining_ > 0, "heard a delivery after completion");
    --remaining_;
  }
}

std::uint64_t KnownKGenieNode::stationary_slots() const {
  return ~std::uint64_t{0};  // constant until the next heard delivery
}

void KnownKGenieNode::on_non_delivery_slots(std::uint64_t /*count*/) {
  // Non-success slots do not change the genie's state.
}

ProtocolFactory make_known_k_factory(std::string name) {
  ProtocolFactory f;
  f.name = std::move(name);
  f.fair_slot = [](std::uint64_t k) {
    return std::make_unique<KnownKGenie>(k);
  };
  f.node = [](std::uint64_t k, Xoshiro256&) {
    return std::make_unique<KnownKGenieNode>(k);
  };
  return f;
}

}  // namespace ucr

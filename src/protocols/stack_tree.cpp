#include "protocols/stack_tree.hpp"

#include <vector>

#include "common/check.hpp"
#include "common/samplers.hpp"

namespace ucr {

RunMetrics run_stack_tree(std::uint64_t k, Xoshiro256& rng,
                          const EngineOptions& options) {
  UCR_REQUIRE(k > 0, "workload must contain at least one message");
  RunMetrics metrics;
  metrics.k = k;
  const std::uint64_t cap = options.resolved_cap(k);

  // stack.back() is the level-0 (transmitting) group.
  std::vector<std::uint64_t> stack{k};
  while (metrics.deliveries < k && metrics.slots < cap) {
    const std::uint64_t group = stack.back();
    metrics.transmissions += group;
    metrics.expected_transmissions += static_cast<double>(group);
    if (group == 0) {
      ++metrics.silence_slots;
      stack.pop_back();
    } else if (group == 1) {
      ++metrics.success_slots;
      ++metrics.deliveries;
      if (options.record_deliveries) {
        metrics.delivery_slots.push_back(metrics.slots);
      }
      stack.pop_back();
    } else {
      ++metrics.collision_slots;
      const std::uint64_t stay = sample_binomial(rng, group, 0.5);
      stack.back() = group - stay;  // pushed to the new level 1
      stack.push_back(stay);        // new level 0
    }
    ++metrics.slots;
    if (stack.empty()) {
      // All groups resolved; if messages remain the protocol restarts with
      // the remaining stations as one fresh group (cannot happen in the
      // batched case, where deliveries == k exactly when the stack empties,
      // but keeps the loop total for any cap interleaving).
      UCR_CHECK(metrics.deliveries == k,
                "stack drained before all messages were delivered");
      break;
    }
  }

  metrics.completed = metrics.deliveries == k;
  metrics.validate();
  return metrics;
}

StackTreeNode::StackTreeNode(Xoshiro256& rng) : rng_(&rng) {}

double StackTreeNode::transmit_probability() {
  return level_ == 0 ? 1.0 : 0.0;
}

void StackTreeNode::on_slot_end(const Feedback& fb) {
  if (fb.delivered_mine) return;  // engine deactivates this station

  if (fb.heard_collision) {
    if (fb.transmitted) {
      // Split: stay at level 0 with probability 1/2, else drop to level 1.
      if (!rng_->next_bernoulli(0.5)) {
        level_ = 1;
      }
    } else {
      ++level_;  // the split is pushed under us
    }
    return;
  }

  if (fb.transmitted) {
    // We transmitted and did not succeed: without heard_collision this can
    // only mean the engine runs the no-CD model, which cannot drive this
    // protocol.
    UCR_CHECK(false,
              "StackTreeNode requires EngineOptions::collision_detection");
  }

  // Success (someone else's) or silence: pop one level.
  UCR_CHECK(level_ > 0,
            "a level-0 station must have transmitted in a non-collision "
            "slot it did not win");
  --level_;
}

}  // namespace ucr

#include "protocols/window_node.hpp"

#include "common/check.hpp"

namespace ucr {

WindowNodeProtocol::WindowNodeProtocol(std::unique_ptr<WindowSchedule> schedule,
                                       Xoshiro256& engine_rng)
    : schedule_(std::move(schedule)),
      draws_(derive_window_offset_stream(engine_rng)) {
  UCR_REQUIRE(schedule_ != nullptr, "window adapter needs a schedule");
}

void WindowNodeProtocol::fetch_window() {
  window_ = schedule_->next_window_slots();
  UCR_CHECK(window_ >= 1, "window schedule produced an empty window");
  offset_ = 0;
  tx_offset_ = draws_.next_below(window_);
}

double WindowNodeProtocol::transmit_probability() {
  if (offset_ == window_) fetch_window();  // window exhausted (or first call)
  return offset_ == tx_offset_ ? 1.0 : 0.0;
}

void WindowNodeProtocol::on_slot_end(const Feedback& /*fb*/) {
  // The pre-draw fixes the whole window at its start, so feedback carries
  // no information this automaton can use: it transmits at tx_offset_ and
  // only there, delivered or collided. The engine deactivates the station
  // itself on delivered_mine.
  ++offset_;
}

std::uint64_t WindowNodeProtocol::stationary_slots() const {
  // Only meaningful right after transmit_probability() fetched the window
  // (offset_ < window_ then).
  if (offset_ >= window_) return 1;
  if (offset_ < tx_offset_) return tx_offset_ - offset_;  // silent run-up
  if (offset_ == tx_offset_) return 1;  // the transmission slot itself
  return window_ - offset_;             // silent tail to the window end
}

void WindowNodeProtocol::on_non_delivery_slots(std::uint64_t count) {
  if (count == 0) return;
  const std::uint64_t certified = offset_ < window_ && offset_ != tx_offset_
                                      ? (offset_ < tx_offset_
                                             ? tx_offset_ - offset_
                                             : window_ - offset_)
                                      : 0;
  UCR_CHECK(count <= certified,
            "bulk advance beyond the certified stationary stretch");
  offset_ += count;
}

}  // namespace ucr

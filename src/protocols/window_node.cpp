#include "protocols/window_node.hpp"

#include "common/check.hpp"

namespace ucr {

WindowNodeProtocol::WindowNodeProtocol(std::unique_ptr<WindowSchedule> schedule)
    : schedule_(std::move(schedule)) {
  UCR_REQUIRE(schedule_ != nullptr, "window adapter needs a schedule");
}

double WindowNodeProtocol::transmit_probability() {
  if (offset_ == window_) {  // window exhausted (or first call): fetch next
    window_ = schedule_->next_window_slots();
    UCR_CHECK(window_ >= 1, "window schedule produced an empty window");
    offset_ = 0;
    sent_this_window_ = false;
  }
  if (sent_this_window_) return 0.0;
  return 1.0 / static_cast<double>(window_ - offset_);
}

void WindowNodeProtocol::on_slot_end(const Feedback& fb) {
  if (fb.transmitted) sent_this_window_ = true;
  ++offset_;
}

std::uint64_t WindowNodeProtocol::stationary_slots() const {
  // Only meaningful right after transmit_probability() fetched the window
  // (offset_ < window_ then). Before the in-window transmission the hazard
  // changes every slot; after it the station is silent to the window end.
  if (!sent_this_window_ || offset_ >= window_) return 1;
  return window_ - offset_;
}

void WindowNodeProtocol::on_non_delivery_slots(std::uint64_t count) {
  if (count == 0) return;
  UCR_CHECK(sent_this_window_ && count <= window_ - offset_,
            "bulk advance beyond the stationary window remainder");
  offset_ += count;
}

}  // namespace ucr

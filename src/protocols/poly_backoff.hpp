// Polynomial back-on — monotone windows w_i = round(i^c), the "polynomial
// back-on" family the paper's introduction mentions alongside exponential
// back-off. For batched arrivals its makespan is superlinear but milder
// than exponential back-off's; it completes the monotone-strategy ablation
// (bench/monotone_backoff).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/protocol.hpp"
#include "sim/runner.hpp"

namespace ucr {

/// Tunables of polynomial back-on.
struct PolyBackoffParams {
  /// Window growth exponent: window i has round(i^c) slots. Must be > 0.
  double c = 2.0;

  void validate() const;
};

/// The monotone polynomial window generator: 1, 2^c, 3^c, ...
class PolynomialBackoff final : public WindowSchedule {
 public:
  explicit PolynomialBackoff(const PolyBackoffParams& params = {});

  std::uint64_t next_window_slots() override;

  std::uint64_t window_index() const { return i_; }

 private:
  PolyBackoffParams params_;
  std::uint64_t i_ = 0;
};

/// Bundles schedule + per-node views for the experiment runner.
ProtocolFactory make_poly_backoff_factory(
    const PolyBackoffParams& params = {}, std::string name = "");

}  // namespace ucr

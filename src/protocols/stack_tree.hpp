// Randomized stack (tree-splitting) algorithm — the classic contention
// resolution technique of Capetanakis / Hayes / Tsybakov-Mikhailov that the
// paper's related-work section contrasts against. It REQUIRES collision
// detection, which the paper's model denies; it is provided here as the
// reference point for how much that capability buys (see the
// cd_comparison bench).
//
// Protocol (blocked access, batched arrivals, no IDs, no knowledge of k):
// every active station keeps a stack level, initially 0. In each slot the
// level-0 stations transmit.
//  * collision  -> each level-0 station flips a fair coin: heads stay at
//                  level 0, tails move to level 1; every other station's
//                  level increases by 1 (the split is pushed).
//  * success or silence -> the level-0 group is exhausted: every station's
//                  level decreases by 1 (pop).
// A station leaves on delivering its message. Expected makespan for a
// batch of k is ~2.89k - Theta(1) (throughput ~0.346), linear like the
// paper's protocols but with a better constant — the price the paper's
// no-CD model pays is roughly a factor 2.5.
//
// Two implementations, cross-validated by tests:
//  * run_stack_tree      — exact aggregate simulation on the stack of
//                          group SIZES (binomial splits), O(1) per slot;
//  * StackTreeNode       — per-station NodeProtocol using only legal CD
//                          feedback, for the node engine with
//                          EngineOptions::collision_detection = true.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"

namespace ucr {

/// Exact aggregate simulation of the stack algorithm on a batch of k.
RunMetrics run_stack_tree(std::uint64_t k, Xoshiro256& rng,
                          const EngineOptions& options);

/// Per-station view; requires an engine run with collision detection
/// (throws on the first collision slot otherwise, because the protocol
/// cannot be driven by the paper's no-CD feedback).
class StackTreeNode final : public NodeProtocol {
 public:
  /// `rng` must outlive the node (used for the split coin flips).
  explicit StackTreeNode(Xoshiro256& rng);

  double transmit_probability() override;
  void on_slot_end(const Feedback& fb) override;

  std::uint64_t level() const { return level_; }

 private:
  Xoshiro256* rng_;
  std::uint64_t level_ = 0;
};

}  // namespace ucr

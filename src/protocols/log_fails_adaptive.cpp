#include "protocols/log_fails_adaptive.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/mathx.hpp"

namespace ucr {

void LogFailsParams::validate() const {
  UCR_REQUIRE(xi_t > 0.0 && xi_t <= 0.5,
              "xi_t must be in (0, 1/2] (at most every other slot is BT)");
  UCR_REQUIRE(xi_delta > 0.0 && xi_delta < 1.0, "xi_delta must be in (0, 1)");
  UCR_REQUIRE(xi_beta > 0.0 && xi_beta <= 1.0, "xi_beta must be in (0, 1]");
  UCR_REQUIRE(epsilon >= 0.0 && epsilon < 0.5,
              "epsilon must be a small error probability (or 0 = derive)");
}

double LogFailsState::track_decrease() { return std::exp(1.0); }

LogFailsState::LogFailsState(const LogFailsParams& params, std::uint64_t k)
    : params_(params) {
  params_.validate();
  if (params_.epsilon == 0.0) {
    UCR_REQUIRE(k > 0, "cannot derive epsilon without the workload size");
    params_.epsilon = 1.0 / (static_cast<double>(k) + 1.0);
  }
  bt_period_ = static_cast<std::uint64_t>(std::llround(1.0 / params_.xi_t));
  UCR_CHECK(bt_period_ >= 2, "BT period must be at least 2");
  const double log_inv_eps = lnx(1.0 / params_.epsilon);
  search_threshold_ = static_cast<std::uint64_t>(
      std::ceil(log_inv_eps * log_inv_eps / params_.xi_beta));
  track_threshold_ = static_cast<std::uint64_t>(
      std::ceil(log_inv_eps / params_.xi_beta));
  UCR_CHECK(track_threshold_ >= 1, "fail threshold must be positive");
  bt_prob_ = 1.0 / (1.0 + log2x(1.0 / params_.epsilon));
}

double LogFailsState::transmit_probability() const {
  if (is_bt_step()) return bt_prob_;
  return 1.0 / kappa_;
}

void LogFailsState::advance(bool heard_delivery) {
  if (heard_delivery) {
    searching_ = false;  // the channel is live: switch to tracking
    kappa_ = std::max(kappa_ - track_decrease(), kKappaFloor);
  } else if (!is_bt_step()) {
    // A silent/collided AT step is a "fail"; the estimator is adjusted
    // only once F of them accumulate (hence "Log-fails").
    ++fails_;
    if (fails_ >= fail_threshold()) {
      if (searching_) {
        kappa_ *= 1.0 + params_.xi_delta;
      } else {
        kappa_ += static_cast<double>(fails_);
      }
      fails_ = 0;
    }
  }
  ++step_;
}

std::uint64_t LogFailsState::constant_probability_slots() const {
  if (is_bt_step()) return 1;  // the next step is AT with p = 1/kappa
  const std::uint64_t to_bt_step = bt_period_ - step_ % bt_period_;
  // A SEARCH->TRACK switch can leave fails_ at or above the (smaller)
  // TRACK threshold; the very next AT fail then updates kappa.
  const std::uint64_t threshold = fail_threshold();
  const std::uint64_t to_threshold =
      fails_ >= threshold ? 1 : threshold - fails_;
  return to_bt_step < to_threshold ? to_bt_step : to_threshold;
}

void LogFailsState::advance_non_delivery(std::uint64_t count) {
  UCR_CHECK(count <= constant_probability_slots(),
            "bulk advance beyond the constant-probability horizon");
  if (is_bt_step()) {
    // Horizon is 1 here and a BT step is not a fail; replay exactly.
    for (; count > 0; --count) advance(false);
    return;
  }
  fails_ += count;
  step_ += count;
  if (fails_ >= fail_threshold()) {
    if (searching_) {
      kappa_ *= 1.0 + params_.xi_delta;
    } else {
      kappa_ += static_cast<double>(fails_);
    }
    fails_ = 0;
  }
}

LogFailsAdaptive::LogFailsAdaptive(const LogFailsParams& params,
                                   std::uint64_t k)
    : state_(params, k) {}

double LogFailsAdaptive::transmit_probability() const {
  return state_.transmit_probability();
}

void LogFailsAdaptive::on_slot_end(bool delivery) { state_.advance(delivery); }

std::uint64_t LogFailsAdaptive::constant_probability_slots() const {
  return state_.constant_probability_slots();
}

void LogFailsAdaptive::on_non_delivery_slots(std::uint64_t count) {
  state_.advance_non_delivery(count);
}

LogFailsAdaptiveNode::LogFailsAdaptiveNode(const LogFailsParams& params,
                                           std::uint64_t k)
    : state_(params, k) {}

double LogFailsAdaptiveNode::transmit_probability() {
  return state_.transmit_probability();
}

void LogFailsAdaptiveNode::on_slot_end(const Feedback& fb) {
  if (fb.delivered_mine) return;  // station goes idle
  state_.advance(fb.heard_delivery);
}

std::uint64_t LogFailsAdaptiveNode::stationary_slots() const {
  return state_.constant_probability_slots();
}

void LogFailsAdaptiveNode::on_non_delivery_slots(std::uint64_t count) {
  state_.advance_non_delivery(count);
}

ProtocolFactory make_log_fails_factory(const LogFailsParams& params,
                                       std::string name) {
  params.validate();
  if (name.empty()) {
    name = "Log-Fails Adaptive (" +
           std::to_string(static_cast<int>(std::llround(1.0 / params.xi_t))) +
           ")";
  }
  ProtocolFactory f;
  f.name = std::move(name);
  f.fair_slot = [params](std::uint64_t k) {
    return std::make_unique<LogFailsAdaptive>(params, k);
  };
  f.node = [params](std::uint64_t k, Xoshiro256&) {
    return std::make_unique<LogFailsAdaptiveNode>(params, k);
  };
  return f;
}

}  // namespace ucr

// Log-Fails Adaptive — the comparison baseline of the paper, i.e. the
// k-selection protocol of Fernández Anta & Mosteiro (DMAA 2(4), 2010),
// reference [7] of the paper.
//
// RECONSTRUCTION NOTICE (see DESIGN.md §5.1): [7]'s pseudocode is not
// reproduced in the paper, so this is a faithful-in-spirit reconstruction
// from the paper's own description of it:
//   * two interleaved algorithms AT/BT, like One-Fail Adaptive;
//   * the BT transmission probability is *fixed* (vs. OFA's adaptive one);
//   * the AT probability is 1/kappa~, with the estimator updated only
//     "after some steps without communication" (vs. OFA's every step) —
//     hence the name the paper gives it: *Log-fails* Adaptive;
//   * it requires knowledge of epsilon <= 1/(n+1), i.e. of a bound on the
//     number of stations; the evaluation uses epsilon ~= 1/(k+1).
//
// Reconstruction (two phases, each updating only after a logarithmic
// number of accumulated silent AT steps — "fails"):
//
//   SEARCH (no delivery heard yet): every F_s =
//   ceil((1/xi_beta) ln^2(1/epsilon)) fails multiply kappa~ by
//   (1 + xi_delta). The quadratic threshold (a union bound over the whole
//   climb, which must succeed w.p. 1-epsilon) is the expensive
//   Theta(log^3) cold start that reproduces [7]'s observed pathology at
//   small-to-moderate k.
//
//   TRACK (after the first delivery): every F_t =
//   ceil((1/xi_beta) ln(1/epsilon)) accumulated silent AT steps add F_t to
//   kappa~ (a batched version of One-Fail Adaptive's +1 per AT step), and
//   every delivery subtracts e from kappa~. The drift balance
//   (+1 per silent AT step amortized, -e per delivery) makes the estimator
//   lock onto the true density, for an asymptotic per-delivery cost of
//   ~(e+1) AT steps — matching [7]'s published (e+1+xi)k bound and hence
//   the Table 1 "Analysis" entries 7.8 (xi_t = 1/2) and 4.4 (xi_t = 1/10)
//   once divided by the AT-step density 1 - xi_t.
//
// A BT step occurs once every round(1/xi_t) slots (the only reading of
// xi_t under which [7]'s two analysis ratios follow from its bound).
// BT transmits with the fixed probability 1/(1 + log2(1/epsilon)).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/protocol.hpp"
#include "sim/runner.hpp"

namespace ucr {

/// Tunables of Log-Fails Adaptive (defaults are the paper's choices).
struct LogFailsParams {
  /// Interleaving fraction: one BT step every round(1/xi_t) slots.
  double xi_t = 0.5;
  /// Multiplicative estimator increase factor (1 + xi_delta) in SEARCH.
  double xi_delta = 0.1;
  /// Fail-threshold scale: F_s = ceil((1/xi_beta) ln^2(1/epsilon)) during
  /// SEARCH, F_t = ceil((1/xi_beta) ln(1/epsilon)) during TRACK.
  double xi_beta = 0.1;
  /// Error parameter; must satisfy epsilon <= 1/(k+1). 0 means "derive
  /// 1/(k+1) from the workload when the factory is instantiated".
  double epsilon = 0.0;

  void validate() const;
};

/// Shared state machine (see file comment for the reconstruction).
class LogFailsState {
 public:
  /// `k` is used only to derive epsilon when params.epsilon == 0.
  LogFailsState(const LogFailsParams& params, std::uint64_t k);

  bool is_bt_step() const { return step_ % bt_period_ == 0; }
  double transmit_probability() const;
  void advance(bool heard_delivery);

  /// Slots (including the current one) over which transmit_probability()
  /// stays constant absent a delivery: up to the next BT step or the next
  /// fail-threshold crossing, whichever comes first. Always >= 1; the
  /// batched fair engine uses it to resolve whole runs of AT fails at
  /// once.
  std::uint64_t constant_probability_slots() const;

  /// Bulk equivalent of `count` advance(false) calls. Requires
  /// count <= constant_probability_slots(): every skipped step is then an
  /// AT fail and at most the final one crosses the fail threshold.
  void advance_non_delivery(std::uint64_t count);

  /// True while no delivery has been heard yet (multiplicative climb).
  bool in_search_phase() const { return searching_; }

  double kappa_estimate() const { return kappa_; }
  std::uint64_t fail_count() const { return fails_; }
  /// The active threshold (SEARCH or TRACK value depending on the phase).
  std::uint64_t fail_threshold() const {
    return searching_ ? search_threshold_ : track_threshold_;
  }
  std::uint64_t search_threshold() const { return search_threshold_; }
  std::uint64_t track_threshold() const { return track_threshold_; }
  std::uint64_t bt_period() const { return bt_period_; }
  double bt_probability() const { return bt_prob_; }

  /// Initial (and minimum) estimator value.
  static constexpr double kKappaFloor = 2.0;
  /// TRACK-phase decrease per delivery (e; see file comment).
  static double track_decrease();

 private:
  LogFailsParams params_;
  std::uint64_t bt_period_;
  std::uint64_t search_threshold_;
  std::uint64_t track_threshold_;
  double bt_prob_;
  double kappa_ = kKappaFloor;
  bool searching_ = true;
  std::uint64_t fails_ = 0;
  std::uint64_t step_ = 1;
};

/// Fair-engine view.
class LogFailsAdaptive final : public FairSlotProtocol {
 public:
  LogFailsAdaptive(const LogFailsParams& params, std::uint64_t k);

  double transmit_probability() const override;
  void on_slot_end(bool delivery) override;

  std::uint64_t constant_probability_slots() const override;
  void on_non_delivery_slots(std::uint64_t count) override;

  const LogFailsState& state() const { return state_; }

 private:
  LogFailsState state_;
};

/// Per-node view.
class LogFailsAdaptiveNode final : public NodeProtocol {
 public:
  LogFailsAdaptiveNode(const LogFailsParams& params, std::uint64_t k);

  double transmit_probability() override;
  void on_slot_end(const Feedback& fb) override;

  /// Same stationarity horizon as the fair view: the per-station update
  /// ignores the station's own transmissions (fails count silent *and*
  /// collided AT steps alike), so absent a delivery the state is a pure
  /// function of elapsed slots up to the next BT step or threshold
  /// crossing.
  std::uint64_t stationary_slots() const override;
  void on_non_delivery_slots(std::uint64_t count) override;

  const LogFailsState& state() const { return state_; }

 private:
  LogFailsState state_;
};

/// Factory; the default name encodes xi_t the way the paper labels curves,
/// e.g. "Log-Fails Adaptive (2)" for xi_t = 1/2.
ProtocolFactory make_log_fails_factory(const LogFailsParams& params = {},
                                       std::string name = "");

}  // namespace ucr

#include "protocols/poly_backoff.hpp"

#include <cmath>
#include <cstdio>

#include "common/check.hpp"
#include "protocols/window_node.hpp"

namespace ucr {

void PolyBackoffParams::validate() const {
  UCR_REQUIRE(c > 0.0, "polynomial back-on requires a positive exponent");
}

PolynomialBackoff::PolynomialBackoff(const PolyBackoffParams& params)
    : params_(params) {
  params_.validate();
}

std::uint64_t PolynomialBackoff::next_window_slots() {
  ++i_;
  const double w = std::pow(static_cast<double>(i_), params_.c);
  const auto slots = static_cast<std::uint64_t>(std::llround(w));
  return slots < 1 ? 1 : slots;
}

ProtocolFactory make_poly_backoff_factory(const PolyBackoffParams& params,
                                          std::string name) {
  params.validate();
  if (name.empty()) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "Polynomial Back-on (c=%g)", params.c);
    name = buf;
  }
  ProtocolFactory f;
  f.name = std::move(name);
  f.window = [params](std::uint64_t) {
    return std::make_unique<PolynomialBackoff>(params);
  };
  f.node = [params](std::uint64_t, Xoshiro256& rng) {
    return std::make_unique<WindowNodeProtocol>(
        std::make_unique<PolynomialBackoff>(params), rng);
  };
  return f;
}

}  // namespace ucr

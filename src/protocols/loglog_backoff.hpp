// LogLog-Iterated Back-off — the monotone baseline of the paper, i.e. the
// best strategy of Bender, Farach-Colton, He, Kuszmaul & Leiserson,
// "Adversarial contention resolution for simple channels" (SPAA 2005),
// reference [2] of the paper. Makespan Theta(k loglog k / logloglog k)
// w.h.p. for batched arrivals; uses no knowledge of k or n.
//
// RECONSTRUCTION NOTICE (see DESIGN.md §5.2): implemented from [2]'s
// specification of the strategy: contention windows that grow by the slow
// multiplicative factor (1 + 1/lglg w) — monotone back-off — starting from
// w = r; the paper's evaluation uses r = 2. lg lg w is clamped below at 1
// so the schedule is defined for the first windows.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/protocol.hpp"
#include "sim/runner.hpp"

namespace ucr {

/// Tunables of LogLog-Iterated Back-off.
struct LogLogParams {
  /// Initial window size (the paper simulates r = 2).
  double r = 2.0;

  void validate() const;
};

/// The monotone window-size generator.
class LogLogIteratedBackoff final : public WindowSchedule {
 public:
  explicit LogLogIteratedBackoff(const LogLogParams& params = {});

  std::uint64_t next_window_slots() override;

  /// Real-valued window variable of the *next* window.
  double window_real() const { return w_; }

 private:
  LogLogParams params_;
  double w_;
};

/// Bundles schedule + per-node views for the experiment runner.
ProtocolFactory make_loglog_factory(
    const LogLogParams& params = {},
    std::string name = "LogLog-Iterated Back-off");

}  // namespace ucr
